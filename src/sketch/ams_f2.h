// AMS second frequency moment sketch, Thorup-Zhang fast variant.
//
// The classic Alon-Matias-Szegedy estimator [1] keeps w counters per row,
// each item hashed to one counter with a 4-wise independent sign; the row
// estimate is the sum of squared counters. Thorup and Zhang [29] observed
// that hashing each item to a *single* counter per row (instead of adding a
// sign to every counter) preserves the variance bound and makes updates
// O(depth). This is exactly the variant the paper uses in its F2 experiments
// (Section 5.1).
//
// The sketch is linear in the input, so it supports negative weights
// (turnstile updates, Section 4) and merging by counter addition (property
// (b) of sketching functions, Section 2).
//
// Lazy densification: a new sketch stores exact (item, weight) entries until
// their count exceeds ~width*depth/8 and only then materializes the counter
// matrix. The correlated framework instantiates thousands of per-bucket
// sketches whose buckets close at mass 2^(l+1) — at low levels they hold a
// handful of items, and the sparse mode keeps them at a few entries instead
// of a full counter matrix (the same technique production sketch libraries
// use). While sparse, Estimate() is exact.
#ifndef CASTREAM_SKETCH_AMS_F2_H_
#define CASTREAM_SKETCH_AMS_F2_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/hash/row_hasher.h"
#include "src/io/decoder.h"
#include "src/io/encoder.h"
#include "src/io/format.h"
#include "src/sketch/counter_matrix.h"
#include "src/sketch/sketch_params.h"

namespace castream {

class AmsF2Sketch;

/// \brief Factory producing mergeable AmsF2Sketch instances that share one
/// immutable set of hash functions.
///
/// Sketches from different factories (different seeds or dimensions) must
/// not be merged; AmsF2Sketch::MergeFrom reports PreconditionFailed in that
/// case. Sharing the hash set keeps the marginal cost of a sketch equal to
/// its counter storage, which matters because the correlated framework
/// instantiates thousands of per-bucket sketches.
class AmsF2SketchFactory {
 public:
  /// CorrelatedSketch<AmsF2SketchFactory> is the registered durable
  /// "correlated F2" summary; these constants give the generic
  /// Serialize/Deserialize its envelope tag and version (src/io/format.h).
  static constexpr SummaryKind kSummaryKind = SummaryKind::kCorrelatedF2;
  static constexpr uint32_t kFormatVersion = io::kCorrelatedF2Version;

  AmsF2SketchFactory(SketchDims dims, uint64_t seed)
      : hashes_(std::make_shared<RowHashSet>(seed, dims.depth, dims.width)) {}

  /// \brief Convenience: dimensions derived from an accuracy target.
  AmsF2SketchFactory(double eps, double delta, uint64_t seed)
      : AmsF2SketchFactory(AmsDimsFor(eps, delta), seed) {}

  /// \brief New empty sketch of this family (starts in sparse mode).
  AmsF2Sketch Create() const;

  /// \brief Computes x's per-row randomness once; the result feeds the
  /// Insert(PreHashed) overload of every sketch in this family.
  RowHashSet::PreHashed Prehash(uint64_t x) const {
    return hashes_->Prehash(x);
  }
  void Prehash(uint64_t x, RowHashSet::PreHashed& out) const {
    hashes_->Prehash(x, out);
  }

  /// \brief Bulk pre-hash: one contiguous row-outer pass over all xs (see
  /// RowHashSet::PreHashBatch). `out` must hold at least xs.size() elements.
  void PrehashBatch(std::span<const uint64_t> xs,
                    RowHashSet::PreHashed* out) const {
    hashes_->PreHashBatch(xs, out);
  }

  /// \brief Accessor-form bulk pre-hash for strided outputs (the
  /// heavy-hitter bundle fills struct members); see
  /// RowHashSet::PreHashBatchTo.
  template <typename OutAt>
  void PrehashBatchTo(std::span<const uint64_t> xs, OutAt at) const {
    hashes_->PreHashBatchTo(xs.data(), xs.size(), at);
  }

  uint32_t depth() const { return hashes_->depth(); }
  uint32_t width() const { return hashes_->width(); }
  uint64_t seed() const { return hashes_->seed(); }

  // ---- Wire format (src/io) ------------------------------------------------
  // The family's value identity is (seed, depth, width): the hash tables are
  // drawn deterministically from them, so a decoded factory stamps out
  // sketches that merge with the originals (RowHashSet::SameFamily).

  void EncodeFamily(io::Encoder& enc) const {
    enc.PutU64(seed());
    enc.PutU32(depth());
    enc.PutU32(width());
  }

  static Result<AmsF2SketchFactory> DecodeFamily(io::Decoder& dec) {
    uint64_t seed = 0;
    uint32_t depth = 0, width = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU64(&seed));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&depth));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&width));
    CASTREAM_RETURN_NOT_OK(ValidateSketchDims(depth, width));
    return AmsF2SketchFactory(SketchDims{depth, width}, seed);
  }

  void EncodeSketch(io::Encoder& enc, const AmsF2Sketch& sketch) const;
  [[nodiscard]] Result<AmsF2Sketch> DecodeSketch(io::Decoder& dec) const;

 private:
  friend class AmsF2Sketch;
  std::shared_ptr<const RowHashSet> hashes_;
};

/// \brief Mergeable (eps, delta) estimator of F2 = sum_i f_i^2 over item
/// frequencies f_i, supporting integer-weighted (including negative) updates.
class AmsF2Sketch {
 public:
  /// \brief Adds `weight` to item x's frequency. O(depth) dense; O(entries)
  /// sparse (entries are few and contiguous by construction).
  void Insert(uint64_t x, int64_t weight) {
    count_ += weight;
    if (!counters_.has_value()) {
      InsertSparse(x, nullptr, weight);
      return;
    }
    InsertDense(x, weight);
  }
  void Insert(uint64_t x) { Insert(x, 1); }

  /// \brief Pre-hashed insert: identical effect to Insert(ph.x, weight), but
  /// the dense path is pure counter arithmetic — zero hash evaluations. The
  /// sparse path stores `ph` alongside the entry so densification never
  /// re-hashes either.
  void Insert(const RowHashSet::PreHashed& ph, int64_t weight = 1) {
    count_ += weight;
    if (!counters_.has_value()) {
      InsertSparse(ph.x, &ph, weight);
      return;
    }
    InsertDense(ph, weight);
  }

  /// \brief Warms the cache lines a subsequent Insert(ph, w) will touch.
  /// Purely advisory — never changes any state or result — so the columnar
  /// ingest path can issue it a few items ahead of the update loop.
  void PrefetchInsert(const RowHashSet::PreHashed& ph) const {
    if (!counters_.has_value()) {
      if (!sparse_.empty()) CASTREAM_PREFETCH(sparse_.data());
      return;
    }
    const uint32_t covered = std::min<uint32_t>(ph.depth, counters_->depth());
    for (uint32_t d = 0; d < covered; ++d) {
      CASTREAM_PREFETCH_WRITE(counters_->CellAddr(d, ph.bucket[d]));
    }
  }

  /// \brief Median-of-rows estimate of F2 (exact while sparse). O(depth).
  double Estimate() const {
    if (!counters_.has_value()) return static_cast<double>(sparse_ss_);
    const uint32_t d = counters_->depth();
    if (d == 1) return static_cast<double>(row_ss_[0]);
    scratch_.assign(row_ss_.begin(), row_ss_.end());
    const size_t mid = scratch_.size() / 2;
    std::nth_element(scratch_.begin(), scratch_.begin() + mid, scratch_.end());
    if (scratch_.size() % 2 == 1) return static_cast<double>(scratch_[mid]);
    int64_t lo = *std::max_element(scratch_.begin(), scratch_.begin() + mid);
    return 0.5 * (static_cast<double>(lo) + static_cast<double>(scratch_[mid]));
  }

  /// \brief Cheap certain upper bound on Estimate(): the maximum per-row sum
  /// of squares (the median over rows can never exceed the max row), or the
  /// exact sum of squares while sparse. O(depth), no scratch copy, no
  /// selection — callers that only need to test `Estimate() >= t` (the
  /// bucket-closing rule of Algorithm 2) can skip the full median whenever
  /// this bound is still below t, without changing a single decision.
  double EstimateUpperBound() const {
    if (!counters_.has_value()) return static_cast<double>(sparse_ss_);
    int64_t worst = row_ss_[0];
    for (size_t d = 1; d < row_ss_.size(); ++d) {
      worst = std::max(worst, row_ss_[d]);
    }
    return static_cast<double>(worst);
  }

  /// \brief Adds another sketch of the same family into this one. The family
  /// check is by value (seed + dimensions), so sketches built from distinct
  /// factory objects — or in distinct processes — merge as long as they were
  /// seeded alike.
  Status MergeFrom(const AmsF2Sketch& other) {
    if (other.hashes_ != hashes_ && !hashes_->SameFamily(*other.hashes_)) {
      return Status::PreconditionFailed(
          "AmsF2Sketch::MergeFrom: sketches from different families");
    }
    if (!other.counters_.has_value()) {
      // Replaying the other side's exact entries works into either mode; the
      // entries carry their pre-hashed rows, so no re-hashing happens here.
      for (const SparseEntry& e : other.sparse_) {
        if (counters_.has_value()) {
          InsertDense(e.ph, e.w);
        } else {
          InsertSparse(e.ph.x, &e.ph, e.w);
        }
      }
      count_ += other.count_;
      return Status::OK();
    }
    if (!counters_.has_value()) Densify();
    counters_->AddFrom(other.counters_.value());
    for (uint32_t d = 0; d < counters_->depth(); ++d) {
      row_ss_[d] = counters_->RowSumSquares(d);
    }
    count_ += other.count_;
    return Status::OK();
  }

  /// \brief Net weight inserted (F1 of the signed stream); used by callers
  /// that track bucket occupancy.
  int64_t NetCount() const { return count_; }

  /// \brief True while the sketch stores exact entries (testing hook).
  bool IsSparse() const { return !counters_.has_value(); }

  size_t SizeBytes() const {
    if (!counters_.has_value()) {
      return sparse_.size() * sizeof(SparseEntry) + sizeof(*this);
    }
    return counters_->SizeBytes() + row_ss_.size() * sizeof(int64_t);
  }
  /// \brief Stored numbers, the "number of tuples stored" unit of
  /// Section 5: exact entries while sparse, counter cells once dense.
  size_t CounterCount() const {
    if (!counters_.has_value()) return sparse_.size();
    return counters_->CounterCount();
  }

 private:
  friend class AmsF2SketchFactory;
  // `ph.x` is the item; `ph` is populated lazily (only inserts that came in
  // pre-hashed carry rows), so densification re-hashes at most the entries
  // that were never pre-hashed. Deliberate trade-off: carrying the rows
  // grows a sparse entry from 16 to ~72 bytes — still below the dense
  // matrix at the capacity where Densify() fires, and typical framework
  // buckets hold only a handful of entries — in exchange for hash-free
  // densification and sparse-replay merges.
  struct SparseEntry {
    RowHashSet::PreHashed ph;
    int64_t w;
  };

  explicit AmsF2Sketch(std::shared_ptr<const RowHashSet> hashes)
      : hashes_(std::move(hashes)) {}

  size_t SparseCapacity() const {
    // cells/8 keeps sparse memory at ~1/4 of the dense matrix; the 128-entry
    // cap bounds the linear scan of InsertSparse on wide configurations.
    const size_t cells = static_cast<size_t>(hashes_->depth()) *
                         hashes_->width();
    return std::clamp<size_t>(cells / 8, 16, 128);
  }

  // Kept out of line so the (long-run) dense insert path stays small enough
  // to inline into callers' hot loops; a sketch leaves sparse mode for good
  // after at most SparseCapacity() + 1 inserts.
  [[gnu::noinline]] void InsertSparse(uint64_t x,
                                      const RowHashSet::PreHashed* ph,
                                      int64_t weight) {
    for (size_t i = 0; i < sparse_.size(); ++i) {
      SparseEntry& e = sparse_[i];
      if (e.ph.x == x) {
        // (w+d)^2 - w^2 maintains the exact sum of squares incrementally.
        sparse_ss_ += 2 * e.w * weight + weight * weight;
        e.w += weight;
        if (ph != nullptr && !e.ph.Computed()) e.ph = *ph;
        // Transpose heuristic: hot items drift toward the front, keeping
        // the linear scan short on skewed streams.
        if (i > 0) std::swap(sparse_[i], sparse_[i - 1]);
        return;
      }
    }
    SparseEntry entry;
    if (ph != nullptr) {
      entry.ph = *ph;
    } else {
      entry.ph.x = x;
    }
    entry.w = weight;
    sparse_.push_back(entry);
    sparse_ss_ += weight * weight;
    if (sparse_.size() > SparseCapacity()) Densify();
  }

  void InsertDense(uint64_t x, int64_t weight) {
    const RowHashSet& h = *hashes_;
    for (uint32_t d = 0; d < h.depth(); ++d) {
      const RowHasher& row = h.row(d);
      const int64_t delta = row.Sign(x) * weight;
      const int64_t old = counters_->AddAndReturnOld(d, row.Bucket(x), delta);
      // (c+delta)^2 - c^2 = 2*c*delta + delta^2, so the row sum of squares
      // can be maintained in O(1) — this is what makes Estimate() cheap
      // enough for the per-insert bucket-closing test in Algorithm 2.
      row_ss_[d] += 2 * old * delta + delta * delta;
    }
  }

  // Hash-free dense update; rows beyond ph.depth (never produced by the
  // factories in this repo, see kMaxPreHashDepth) hash on demand.
  void InsertDense(const RowHashSet::PreHashed& ph, int64_t weight) {
    const RowHashSet& h = *hashes_;
    const uint32_t depth = h.depth();
    for (uint32_t d = 0; d < depth; ++d) {
      int64_t sign;
      uint32_t bucket;
      if (d < ph.depth) {
        sign = ph.Sign(d);
        bucket = ph.bucket[d];
      } else {
        const RowHasher& row = h.row(d);
        sign = row.Sign(ph.x);
        bucket = row.Bucket(ph.x);
      }
      const int64_t delta = sign * weight;
      const int64_t old = counters_->AddAndReturnOld(d, bucket, delta);
      row_ss_[d] += 2 * old * delta + delta * delta;
    }
  }

  void Densify() {
    counters_.emplace(hashes_->depth(), hashes_->width());
    row_ss_.assign(hashes_->depth(), 0);
    // Entries inserted pre-hashed replay without any hashing; entries whose
    // ph was never computed fall back to on-demand hashing inside
    // InsertDense (ph.depth == 0 routes every row there).
    for (const SparseEntry& e : sparse_) InsertDense(e.ph, e.w);
    sparse_.clear();
    sparse_.shrink_to_fit();
    sparse_ss_ = 0;
  }

  // ---- Wire format (called through the factory's Encode/DecodeSketch) ------
  // Only integer stream state goes on the wire: sparse entries as (x, weight)
  // pairs — the per-row pre-hash is recomputed from the family, which is
  // deterministic, so replayed densification stays bit-identical — and dense
  // mode as the raw counter cells. sparse_ss_ / row_ss_ are derived and
  // recomputed on decode (their incremental maintenance is exact integer
  // arithmetic, so recomputation reproduces them bit-for-bit).

  void EncodeTo(io::Encoder& enc) const {
    enc.PutI64(count_);
    if (!counters_.has_value()) {
      enc.PutU8(0);
      enc.PutU32(static_cast<uint32_t>(sparse_.size()));
      for (const SparseEntry& e : sparse_) {
        enc.PutU64(e.ph.x);
        enc.PutI64(e.w);
      }
      return;
    }
    enc.PutU8(1);
    const uint32_t d = counters_->depth();
    const uint32_t w = counters_->width();
    enc.PutU32(d);
    enc.PutU32(w);
    for (uint32_t row = 0; row < d; ++row) {
      for (uint32_t col = 0; col < w; ++col) {
        enc.PutI64(counters_->at(row, col));
      }
    }
  }

  [[nodiscard]] Status DecodeFrom(io::Decoder& dec) {
    CASTREAM_RETURN_NOT_OK(dec.ReadI64(&count_));
    uint8_t mode = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU8(&mode));
    if (mode == 0) {
      uint32_t n = 0;
      CASTREAM_RETURN_NOT_OK(dec.ReadCount(&n, 16));
      if (n > SparseCapacity()) {
        return Status::InvalidArgument(
            "decode: sparse entry count exceeds this family's capacity");
      }
      sparse_.clear();
      sparse_.reserve(n);
      sparse_ss_ = 0;
      for (uint32_t i = 0; i < n; ++i) {
        SparseEntry e;
        CASTREAM_RETURN_NOT_OK(dec.ReadU64(&e.ph.x));
        CASTREAM_RETURN_NOT_OK(dec.ReadI64(&e.w));
        // Entries are unique by item: the encoder aggregates weights per x,
        // so duplicates prove corruption (and would skew the exact sparse
        // F2, which assumes one aggregated weight per item).
        for (const SparseEntry& seen : sparse_) {
          if (seen.ph.x == e.ph.x) {
            return Status::InvalidArgument(
                "decode: duplicate item in sparse sketch entries");
          }
        }
        // Unsigned multiply: defined even for adversarial weights (the
        // incremental arithmetic it mirrors wraps identically in practice).
        sparse_ss_ += static_cast<int64_t>(static_cast<uint64_t>(e.w) *
                                           static_cast<uint64_t>(e.w));
        sparse_.push_back(e);
      }
      return Status::OK();
    }
    if (mode != 1) {
      return Status::InvalidArgument("decode: bad AMS sketch mode byte");
    }
    uint32_t d = 0, w = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&d));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&w));
    if (d != hashes_->depth() || w != hashes_->width()) {
      return Status::InvalidArgument(
          "decode: dense counter dimensions disagree with the hash family");
    }
    const size_t cells = static_cast<size_t>(d) * w;
    if (dec.remaining() < cells * 8) {
      return Status::InvalidArgument(
          "decode: payload too short for the declared counter matrix");
    }
    counters_.emplace(d, w);
    row_ss_.assign(d, 0);
    sparse_.clear();
    sparse_ss_ = 0;
    for (uint32_t row = 0; row < d; ++row) {
      uint64_t ss = 0;  // unsigned: no UB on adversarial counter values
      for (uint32_t col = 0; col < w; ++col) {
        int64_t v = 0;
        CASTREAM_RETURN_NOT_OK(dec.ReadI64(&v));
        counters_->AddAndReturnOld(row, col, v);
        ss += static_cast<uint64_t>(v) * static_cast<uint64_t>(v);
      }
      row_ss_[row] = static_cast<int64_t>(ss);
    }
    return Status::OK();
  }

  std::shared_ptr<const RowHashSet> hashes_;
  std::optional<CounterMatrix> counters_;  // nullopt while sparse
  std::vector<int64_t> row_ss_;            // dense mode: per-row sum-squares
  std::vector<SparseEntry> sparse_;        // sparse mode: exact entries
  int64_t sparse_ss_ = 0;                  // sparse mode: exact F2
  int64_t count_ = 0;
  mutable std::vector<int64_t> scratch_;
};

inline AmsF2Sketch AmsF2SketchFactory::Create() const {
  return AmsF2Sketch(hashes_);
}

inline void AmsF2SketchFactory::EncodeSketch(io::Encoder& enc,
                                             const AmsF2Sketch& sketch) const {
  sketch.EncodeTo(enc);
}

inline Result<AmsF2Sketch> AmsF2SketchFactory::DecodeSketch(
    io::Decoder& dec) const {
  AmsF2Sketch sketch = Create();
  CASTREAM_RETURN_NOT_OK(sketch.DecodeFrom(dec));
  return sketch;
}

}  // namespace castream

#endif  // CASTREAM_SKETCH_AMS_F2_H_
