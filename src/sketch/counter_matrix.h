// Contiguous depth x width counter storage shared by the linear sketches
// (AMS-F2 and CountSketch are the same counter structure with different
// estimators; both are linear maps of the input, hence turnstile-capable and
// mergeable by addition).
#ifndef CASTREAM_SKETCH_COUNTER_MATRIX_H_
#define CASTREAM_SKETCH_COUNTER_MATRIX_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace castream {

/// \brief Row-major matrix of int64 counters for linear sketches.
class CounterMatrix {
 public:
  CounterMatrix(uint32_t depth, uint32_t width)
      : depth_(depth), width_(width),
        cells_(static_cast<size_t>(depth) * width, 0) {}

  int64_t at(uint32_t row, uint32_t col) const {
    return cells_[static_cast<size_t>(row) * width_ + col];
  }

  /// \brief Adds `delta` to one cell and returns the *previous* value (the
  /// previous value lets callers maintain incremental sums of squares).
  int64_t AddAndReturnOld(uint32_t row, uint32_t col, int64_t delta) {
    int64_t& cell = cells_[static_cast<size_t>(row) * width_ + col];
    int64_t old = cell;
    cell += delta;
    return old;
  }

  /// \brief Address of one cell, for software prefetch ahead of an update
  /// loop; never dereferenced by the caller.
  const int64_t* CellAddr(uint32_t row, uint32_t col) const {
    return &cells_[static_cast<size_t>(row) * width_ + col];
  }

  /// \brief Cell-wise addition; dimensions must match (checked by caller).
  void AddFrom(const CounterMatrix& other) {
    for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  }

  bool SameShape(const CounterMatrix& other) const {
    return depth_ == other.depth_ && width_ == other.width_;
  }

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }

  /// \brief Number of stored counters (the "tuples stored" unit used by the
  /// paper's space plots).
  size_t CounterCount() const { return cells_.size(); }
  size_t SizeBytes() const { return cells_.size() * sizeof(int64_t); }

  /// \brief Sum of squares of one row, computed from scratch.
  int64_t RowSumSquares(uint32_t row) const {
    const int64_t* p = &cells_[static_cast<size_t>(row) * width_];
    int64_t ss = 0;
    for (uint32_t c = 0; c < width_; ++c) ss += p[c] * p[c];
    return ss;
  }

 private:
  uint32_t depth_;
  uint32_t width_;
  std::vector<int64_t> cells_;
};

}  // namespace castream

#endif  // CASTREAM_SKETCH_COUNTER_MATRIX_H_
