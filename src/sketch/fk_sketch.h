// Fk frequency-moment sketch for k > 2, a practical variant of the
// Indyk-Woodruff framework [22].
//
// Structure (the same recursive-subsampling skeleton as [22]):
//   * L geometric subsampling levels; item x survives to level j iff its
//     hash has at least j leading zero bits, so level j is a uniform
//     2^-j-sample of the item universe;
//   * each level carries a CountSketch for frequency recovery, a small KMV
//     for the level's distinct count, and a bounded candidate set of the
//     items with the largest estimated frequencies at that level.
// Estimation splits Fk into a heavy part (top candidates at level 0,
// estimated directly) and a light part (candidates at the deepest level
// whose population fits the sketch, Horvitz-Thompson scaled by 2^j). This
// single-recursion variant trades the full logarithmic recursion of [22]
// for implementation clarity; its error is dominated by the same two terms
// (heavy-hitter estimation error and subsampling variance) and it inherits
// mergeability from its linear parts. Accuracy knobs: width/depth/candidates.
#ifndef CASTREAM_SKETCH_FK_SKETCH_H_
#define CASTREAM_SKETCH_FK_SKETCH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/kmv.h"

namespace castream {

/// \brief Tuning parameters for FkSketch.
struct FkSketchOptions {
  /// Moment order; must be > 0 (k=2 works but AmsF2Sketch is cheaper).
  double k = 3.0;
  /// Subsampling levels; level j samples the universe at rate 2^-j.
  uint32_t levels = 20;
  /// CountSketch dimensions per level.
  uint32_t width = 512;
  uint32_t depth = 4;
  /// Candidates retained per level (pruned lazily at 2x this bound).
  uint32_t candidates = 64;
  /// KMV size for per-level distinct counts.
  uint32_t kmv_k = 64;
};

class FkSketch;

/// \brief The per-item randomness of FkSketch's recursive subsampling,
/// computed once per record: the deepest level x survives to. The per-level
/// CountSketches use independent hash families (they must, for the
/// Indyk-Woodruff analysis), so their hashing stays per-level; what the
/// pre-hash removes is the level-assignment hash shared by every FkSketch
/// of one family.
struct FkPreHashed {
  uint64_t x = 0;
  uint32_t max_level = 0;
};

/// \brief Factory for mergeable FkSketch instances. All sketches of one
/// factory share hash functions (shared_ptr-held, immutable), so they can be
/// merged; the factory object itself may be destroyed before its sketches.
class FkSketchFactory {
 public:
  FkSketchFactory(FkSketchOptions options, uint64_t seed);

  FkSketch Create() const;
  const FkSketchOptions& options() const;

  /// \brief Computes x's subsample-level assignment once; feeds the
  /// Insert(FkPreHashed) overload of every sketch in this family.
  FkPreHashed Prehash(uint64_t x) const;

 private:
  friend class FkSketch;
  struct Shared;
  std::shared_ptr<const Shared> shared_;
};

/// \brief Mergeable estimator of Fk = sum_i f_i^k (insert-only weights >= 0;
/// negative weights are accepted by the linear parts but the estimator is
/// analyzed for the cash-register model, matching Section 3 of the paper).
class FkSketch {
 public:
  /// \brief Adds `weight` to item x's frequency. Expected O(depth) work:
  /// the number of levels an item updates is geometric with mean 2.
  void Insert(uint64_t x, int64_t weight = 1);

  /// \brief Pre-hashed insert: identical effect to Insert(ph.x, weight)
  /// without re-evaluating the level-assignment hash.
  void Insert(const FkPreHashed& ph, int64_t weight = 1);

  /// \brief Two-part (heavy + subsampled light) estimate of Fk.
  double Estimate() const;

  Status MergeFrom(const FkSketch& other);

  size_t SizeBytes() const;
  size_t CounterCount() const;

  /// \brief Items tracked as heavy candidates at level 0 with their current
  /// estimated frequencies, best first; used by heavy-hitter queries.
  std::vector<std::pair<uint64_t, double>> TopCandidates(uint32_t n) const;

 private:
  friend class FkSketchFactory;
  struct Level {
    CountSketch cs;
    KmvSketch kmv;
    // Candidate item ids; frequencies are re-estimated on demand so the set
    // stays correct after merges.
    std::vector<uint64_t> candidates;

    Level(CountSketch cs_in, KmvSketch kmv_in)
        : cs(std::move(cs_in)), kmv(std::move(kmv_in)) {}
  };

  explicit FkSketch(std::shared_ptr<const FkSketchFactory::Shared> shared);

  uint32_t MaxLevelOf(uint64_t x) const;
  void PruneCandidates(Level& level) const;
  void AddCandidate(Level& level, uint64_t x) const;

  std::shared_ptr<const FkSketchFactory::Shared> shared_;
  std::vector<Level> levels_;
};

}  // namespace castream

#endif  // CASTREAM_SKETCH_FK_SKETCH_H_
