// L1 (sum of |net frequency|) turnstile sketch via Indyk's stable-law
// projections: z_i = sum_x f_x * C_i(x) with C_i(x) pseudo-random standard
// Cauchy variates; median(|z_i|) estimates ||f||_1 because the Cauchy
// distribution is 1-stable and median(|Cauchy|) = 1.
//
// Role in this repository: MULTIPASS (Section 4.2) needs a whole-stream
// turnstile sketch A for g(x) = |x|; AMS covers g(x) = x^2 and this covers
// the L1 case, demonstrating the generality of the multipass reduction.
#ifndef CASTREAM_SKETCH_L1_SKETCH_H_
#define CASTREAM_SKETCH_L1_SKETCH_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <numbers>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/status.h"
#include "src/hash/hash_family.h"

namespace castream {

class L1Sketch;

/// \brief Factory for mergeable L1Sketch instances sharing the Cauchy seed.
class L1SketchFactory {
 public:
  /// \brief `projections` controls accuracy: relative error ~ c/sqrt(r).
  L1SketchFactory(uint32_t projections, uint64_t seed)
      : projections_(projections), seed_(seed) {}

  static uint32_t ProjectionsForAccuracy(double eps, double delta) {
    double r = (6.0 / (eps * eps)) *
               std::max(1.0, std::log2(1.0 / std::max(1e-12, delta)) / 2.0);
    return static_cast<uint32_t>(std::min(r, 4096.0));
  }

  L1Sketch Create() const;
  uint32_t projections() const { return projections_; }

 private:
  friend class L1Sketch;
  uint32_t projections_;
  uint64_t seed_;
};

/// \brief Mergeable turnstile estimator of L1 = sum_x |f_x|.
class L1Sketch {
 public:
  /// \brief Adds `weight` (possibly negative) to item x. O(projections).
  void Insert(uint64_t x, int64_t weight = 1) {
    for (uint32_t i = 0; i < projections_; ++i) {
      z_[i] += static_cast<double>(weight) * CauchyAt(x, i);
    }
  }

  /// \brief median(|z_i|); unbiased in the median sense for ||f||_1.
  double Estimate() const {
    scratch_.resize(z_.size());
    for (size_t i = 0; i < z_.size(); ++i) scratch_[i] = std::abs(z_[i]);
    return MedianInPlace(scratch_);
  }

  Status MergeFrom(const L1Sketch& other) {
    if (seed_ != other.seed_ || projections_ != other.projections_) {
      return Status::PreconditionFailed(
          "L1Sketch::MergeFrom: sketches from different families");
    }
    for (size_t i = 0; i < z_.size(); ++i) z_[i] += other.z_[i];
    return Status::OK();
  }

  size_t SizeBytes() const { return z_.size() * sizeof(double); }
  size_t CounterCount() const { return z_.size(); }

 private:
  friend class L1SketchFactory;
  L1Sketch(uint32_t projections, uint64_t seed)
      : projections_(projections), seed_(seed), z_(projections, 0.0) {}

  /// \brief Deterministic standard-Cauchy variate for (x, projection i):
  /// same (seed, x, i) always produces the same variate, which is what makes
  /// two sketches of one family mergeable by addition.
  double CauchyAt(uint64_t x, uint32_t i) const {
    const uint64_t h = MixHash64(x, seed_ ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    // Map to (0, 1) exclusive to keep tan() finite.
    const double u =
        (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
    return std::tan(std::numbers::pi * (u - 0.5));
  }

  uint32_t projections_;
  uint64_t seed_;
  std::vector<double> z_;
  mutable std::vector<double> scratch_;
};

inline L1Sketch L1SketchFactory::Create() const {
  return L1Sketch(projections_, seed_);
}

}  // namespace castream

#endif  // CASTREAM_SKETCH_L1_SKETCH_H_
