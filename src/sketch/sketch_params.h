// Translation of (epsilon, delta) accuracy targets into sketch dimensions.
#ifndef CASTREAM_SKETCH_SKETCH_PARAMS_H_
#define CASTREAM_SKETCH_SKETCH_PARAMS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/common/bit_util.h"
#include "src/common/status.h"

namespace castream {

/// \brief Dimensions of a depth x width linear sketch.
struct SketchDims {
  uint32_t depth = 1;
  uint32_t width = 16;
};

/// \brief Sanity bounds on sketch dimensions read from a serialized blob:
/// keeps a corrupt payload from driving a multi-gigabyte counter-matrix
/// allocation before any byte of counter data is validated.
[[nodiscard]] inline Status ValidateSketchDims(uint32_t depth,
                                               uint32_t width) {
  if (depth < 1 || depth > 256) {
    return Status::InvalidArgument("decode: sketch depth out of range [1, 256]");
  }
  if (width < 1 || width > (uint32_t{1} << 26) || (width & (width - 1)) != 0) {
    return Status::InvalidArgument(
        "decode: sketch width must be a power of two in [1, 2^26]");
  }
  return Status::OK();
}

/// \brief Dimensions for an AMS-F2 sketch giving an (eps, delta) estimator.
///
/// One row of width w has variance <= 2*F2^2/w, so w = ceil(8/eps^2) gives a
/// (eps, 1/4)-estimator per row [1],[29]; taking the median of
/// O(log(1/delta)) rows boosts confidence. `depth_cap` bounds the row count:
/// the theoretical gamma inside the correlated framework is astronomically
/// small (delta / (4 * ymax * levels)), and capping depth is the practical
/// choice the paper's own experiments imply (their measured space fits only
/// a small constant number of rows).
inline SketchDims AmsDimsFor(double eps, double delta,
                             uint32_t depth_cap = 8) {
  SketchDims d;
  double w = 8.0 / (eps * eps);
  d.width = static_cast<uint32_t>(
      NextPow2(static_cast<uint64_t>(std::max(16.0, std::ceil(w)))));
  double rows = std::ceil(4.0 * std::log(1.0 / std::max(1e-12, delta)));
  d.depth = static_cast<uint32_t>(
      std::clamp<double>(rows, 1.0, static_cast<double>(depth_cap)));
  return d;
}

/// \brief Dimensions for a CountSketch achieving additive error
/// eps * sqrt(F2) per point estimate with probability 1 - delta.
inline SketchDims CountSketchDimsFor(double eps, double delta,
                                     uint32_t depth_cap = 8) {
  SketchDims d;
  double w = 3.0 / (eps * eps);
  d.width = static_cast<uint32_t>(
      NextPow2(static_cast<uint64_t>(std::max(16.0, std::ceil(w)))));
  double rows = std::ceil(4.0 * std::log(1.0 / std::max(1e-12, delta)));
  d.depth = static_cast<uint32_t>(
      std::clamp<double>(rows, 1.0, static_cast<double>(depth_cap)));
  return d;
}

}  // namespace castream

#endif  // CASTREAM_SKETCH_SKETCH_PARAMS_H_
