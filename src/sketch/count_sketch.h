// CountSketch (Charikar-Chen-Farach-Colton [8]): per-item frequency
// estimation with additive error ~sqrt(F2/width). Used by the correlated
// F2-heavy-hitters structure of Section 3.3, where every dyadic bucket
// carries a CountSketch alongside its AMS sketch.
//
// Like AmsF2Sketch, a new CountSketch stores exact (item, weight) entries
// ("sparse mode") until their count exceeds ~width*depth/8 (capped), then
// materializes the counter matrix. Low-level dyadic buckets close after a
// handful of items, so sparse mode keeps the thousands of per-bucket
// sketches small — and exact.
#ifndef CASTREAM_SKETCH_COUNT_SKETCH_H_
#define CASTREAM_SKETCH_COUNT_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/hash/row_hasher.h"
#include "src/io/decoder.h"
#include "src/io/encoder.h"
#include "src/sketch/counter_matrix.h"
#include "src/sketch/sketch_params.h"

namespace castream {

class CountSketch;

/// \brief Factory producing mergeable CountSketch instances sharing one hash
/// set (see AmsF2SketchFactory for the rationale).
class CountSketchFactory {
 public:
  CountSketchFactory(SketchDims dims, uint64_t seed)
      : hashes_(std::make_shared<RowHashSet>(seed, dims.depth, dims.width)) {}

  CountSketchFactory(double eps, double delta, uint64_t seed)
      : CountSketchFactory(CountSketchDimsFor(eps, delta), seed) {}

  CountSketch Create() const;

  /// \brief Computes x's per-row randomness once; the result feeds the
  /// Insert(PreHashed) overload of every sketch in this family.
  RowHashSet::PreHashed Prehash(uint64_t x) const {
    return hashes_->Prehash(x);
  }
  void Prehash(uint64_t x, RowHashSet::PreHashed& out) const {
    hashes_->Prehash(x, out);
  }

  /// \brief Bulk pre-hash (see RowHashSet::PreHashBatch).
  void PrehashBatch(std::span<const uint64_t> xs,
                    RowHashSet::PreHashed* out) const {
    hashes_->PreHashBatch(xs, out);
  }

  /// \brief Accessor-form bulk pre-hash for strided outputs (see
  /// RowHashSet::PreHashBatchTo).
  template <typename OutAt>
  void PrehashBatchTo(std::span<const uint64_t> xs, OutAt at) const {
    hashes_->PreHashBatchTo(xs.data(), xs.size(), at);
  }

  uint32_t depth() const { return hashes_->depth(); }
  uint32_t width() const { return hashes_->width(); }
  uint64_t seed() const { return hashes_->seed(); }

  // ---- Wire format (src/io; same scheme as AmsF2SketchFactory) -------------

  void EncodeFamily(io::Encoder& enc) const {
    enc.PutU64(seed());
    enc.PutU32(depth());
    enc.PutU32(width());
  }

  static Result<CountSketchFactory> DecodeFamily(io::Decoder& dec) {
    uint64_t seed = 0;
    uint32_t depth = 0, width = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU64(&seed));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&depth));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&width));
    CASTREAM_RETURN_NOT_OK(ValidateSketchDims(depth, width));
    return CountSketchFactory(SketchDims{depth, width}, seed);
  }

  void EncodeSketch(io::Encoder& enc, const CountSketch& sketch) const;
  [[nodiscard]] Result<CountSketch> DecodeSketch(io::Decoder& dec) const;

 private:
  friend class CountSketch;
  std::shared_ptr<const RowHashSet> hashes_;
};

/// \brief Linear sketch answering point queries f_x with additive error
/// sqrt(F2/width) per row, median over rows; supports negative weights and
/// merging within a family.
class CountSketch {
 public:
  /// \brief Adds `weight` to item x's frequency.
  void Insert(uint64_t x, int64_t weight = 1) {
    if (!counters_.has_value()) {
      InsertSparse(x, nullptr, weight);
      return;
    }
    InsertDense(x, weight);
  }

  /// \brief Pre-hashed insert: identical effect to Insert(ph.x, weight) with
  /// a hash-free dense path (see AmsF2Sketch for the rationale).
  void Insert(const RowHashSet::PreHashed& ph, int64_t weight = 1) {
    if (!counters_.has_value()) {
      InsertSparse(ph.x, &ph, weight);
      return;
    }
    InsertDense(ph, weight);
  }

  /// \brief Warms the cache lines a subsequent Insert(ph, w) will touch;
  /// purely advisory (see AmsF2Sketch::PrefetchInsert).
  void PrefetchInsert(const RowHashSet::PreHashed& ph) const {
    if (!counters_.has_value()) {
      if (!sparse_.empty()) CASTREAM_PREFETCH(sparse_.data());
      return;
    }
    const uint32_t covered = std::min<uint32_t>(ph.depth, counters_->depth());
    for (uint32_t d = 0; d < covered; ++d) {
      CASTREAM_PREFETCH_WRITE(counters_->CellAddr(d, ph.bucket[d]));
    }
  }

  /// \brief Estimate of item x's frequency (exact while sparse).
  double EstimateFrequency(uint64_t x) const {
    if (!counters_.has_value()) {
      for (const SparseEntry& e : sparse_) {
        if (e.ph.x == x) return static_cast<double>(e.w);
      }
      return 0.0;
    }
    const RowHashSet& h = *hashes_;
    scratch_.clear();
    for (uint32_t d = 0; d < h.depth(); ++d) {
      const RowHasher& row = h.row(d);
      scratch_.push_back(
          static_cast<double>(row.Sign(x) * counters_->at(d, row.Bucket(x))));
    }
    return MedianOfScratch();
  }

  /// \brief Median-of-rows estimate of F2 of the inserted frequencies (a
  /// CountSketch row is an AMS row, so the row sum of squares estimates F2).
  /// Callers use it as a noise scale: point estimates carry additive error
  /// ~sqrt(F2/width). Exact while sparse.
  double EstimateF2() const {
    if (!counters_.has_value()) {
      double ss = 0.0;
      for (const SparseEntry& e : sparse_) {
        ss += static_cast<double>(e.w) * static_cast<double>(e.w);
      }
      return ss;
    }
    scratch_.clear();
    for (uint32_t d = 0; d < counters_->depth(); ++d) {
      scratch_.push_back(static_cast<double>(counters_->RowSumSquares(d)));
    }
    return MedianOfScratch();
  }

  Status MergeFrom(const CountSketch& other) {
    if (other.hashes_ != hashes_ && !hashes_->SameFamily(*other.hashes_)) {
      return Status::PreconditionFailed(
          "CountSketch::MergeFrom: sketches from different families");
    }
    if (!other.counters_.has_value()) {
      // Replay carries the stored pre-hashes, so merging never re-hashes.
      for (const SparseEntry& e : other.sparse_) Insert(e.ph, e.w);
      return Status::OK();
    }
    if (!counters_.has_value()) Densify();
    counters_->AddFrom(other.counters_.value());
    return Status::OK();
  }

  bool IsSparse() const { return !counters_.has_value(); }

  size_t SizeBytes() const {
    if (!counters_.has_value()) {
      return sparse_.size() * sizeof(SparseEntry) + sizeof(*this);
    }
    return counters_->SizeBytes();
  }
  size_t CounterCount() const {
    if (!counters_.has_value()) return sparse_.size();
    return counters_->CounterCount();
  }

 private:
  friend class CountSketchFactory;
  // `ph.x` is the item; `ph` is populated lazily so densification re-hashes
  // at most the entries that were never pre-hashed (see AmsF2Sketch for the
  // entry-size trade-off).
  struct SparseEntry {
    RowHashSet::PreHashed ph;
    int64_t w;
  };

  explicit CountSketch(std::shared_ptr<const RowHashSet> hashes)
      : hashes_(std::move(hashes)) {}

  size_t SparseCapacity() const {
    const size_t cells =
        static_cast<size_t>(hashes_->depth()) * hashes_->width();
    return std::clamp<size_t>(cells / 8, 16, 128);
  }

  // Out of line for the same hot-loop inlining reason as
  // AmsF2Sketch::InsertSparse.
  [[gnu::noinline]] void InsertSparse(uint64_t x,
                                      const RowHashSet::PreHashed* ph,
                                      int64_t weight) {
    for (size_t i = 0; i < sparse_.size(); ++i) {
      SparseEntry& e = sparse_[i];
      if (e.ph.x == x) {
        e.w += weight;
        if (ph != nullptr && !e.ph.Computed()) e.ph = *ph;
        // Transpose heuristic: hot items drift toward the front (see
        // AmsF2Sketch::InsertSparse).
        if (i > 0) std::swap(sparse_[i], sparse_[i - 1]);
        return;
      }
    }
    SparseEntry entry;
    if (ph != nullptr) {
      entry.ph = *ph;
    } else {
      entry.ph.x = x;
    }
    entry.w = weight;
    sparse_.push_back(entry);
    if (sparse_.size() > SparseCapacity()) Densify();
  }

  void InsertDense(uint64_t x, int64_t weight) {
    const RowHashSet& h = *hashes_;
    for (uint32_t d = 0; d < h.depth(); ++d) {
      const RowHasher& row = h.row(d);
      counters_->AddAndReturnOld(d, row.Bucket(x), row.Sign(x) * weight);
    }
  }

  // Hash-free dense update; rows beyond ph.depth hash on demand.
  void InsertDense(const RowHashSet::PreHashed& ph, int64_t weight) {
    const RowHashSet& h = *hashes_;
    const uint32_t depth = h.depth();
    for (uint32_t d = 0; d < depth; ++d) {
      if (d < ph.depth) {
        counters_->AddAndReturnOld(d, ph.bucket[d], ph.Sign(d) * weight);
      } else {
        const RowHasher& row = h.row(d);
        counters_->AddAndReturnOld(d, row.Bucket(ph.x),
                                   row.Sign(ph.x) * weight);
      }
    }
  }

  void Densify() {
    counters_.emplace(hashes_->depth(), hashes_->width());
    for (const SparseEntry& e : sparse_) InsertDense(e.ph, e.w);
    sparse_.clear();
    sparse_.shrink_to_fit();
  }

  // ---- Wire format (see AmsF2Sketch: sparse entries stay sparse, dense
  // mode ships raw cells; pre-hashes are recomputed from the family) --------

  void EncodeTo(io::Encoder& enc) const {
    if (!counters_.has_value()) {
      enc.PutU8(0);
      enc.PutU32(static_cast<uint32_t>(sparse_.size()));
      for (const SparseEntry& e : sparse_) {
        enc.PutU64(e.ph.x);
        enc.PutI64(e.w);
      }
      return;
    }
    enc.PutU8(1);
    const uint32_t d = counters_->depth();
    const uint32_t w = counters_->width();
    enc.PutU32(d);
    enc.PutU32(w);
    for (uint32_t row = 0; row < d; ++row) {
      for (uint32_t col = 0; col < w; ++col) {
        enc.PutI64(counters_->at(row, col));
      }
    }
  }

  [[nodiscard]] Status DecodeFrom(io::Decoder& dec) {
    uint8_t mode = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU8(&mode));
    if (mode == 0) {
      uint32_t n = 0;
      CASTREAM_RETURN_NOT_OK(dec.ReadCount(&n, 16));
      if (n > SparseCapacity()) {
        return Status::InvalidArgument(
            "decode: sparse entry count exceeds this family's capacity");
      }
      sparse_.clear();
      sparse_.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SparseEntry e;
        CASTREAM_RETURN_NOT_OK(dec.ReadU64(&e.ph.x));
        CASTREAM_RETURN_NOT_OK(dec.ReadI64(&e.w));
        // Entries are unique by item (see AmsF2Sketch::DecodeFrom).
        for (const SparseEntry& seen : sparse_) {
          if (seen.ph.x == e.ph.x) {
            return Status::InvalidArgument(
                "decode: duplicate item in sparse sketch entries");
          }
        }
        sparse_.push_back(e);
      }
      return Status::OK();
    }
    if (mode != 1) {
      return Status::InvalidArgument("decode: bad CountSketch mode byte");
    }
    uint32_t d = 0, w = 0;
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&d));
    CASTREAM_RETURN_NOT_OK(dec.ReadU32(&w));
    if (d != hashes_->depth() || w != hashes_->width()) {
      return Status::InvalidArgument(
          "decode: dense counter dimensions disagree with the hash family");
    }
    const size_t cells = static_cast<size_t>(d) * w;
    if (dec.remaining() < cells * 8) {
      return Status::InvalidArgument(
          "decode: payload too short for the declared counter matrix");
    }
    counters_.emplace(d, w);
    sparse_.clear();
    for (uint32_t row = 0; row < d; ++row) {
      for (uint32_t col = 0; col < w; ++col) {
        int64_t v = 0;
        CASTREAM_RETURN_NOT_OK(dec.ReadI64(&v));
        counters_->AddAndReturnOld(row, col, v);
      }
    }
    return Status::OK();
  }

  double MedianOfScratch() const {
    const size_t mid = scratch_.size() / 2;
    std::nth_element(scratch_.begin(), scratch_.begin() + mid, scratch_.end());
    if (scratch_.size() % 2 == 1) return scratch_[mid];
    double lo = *std::max_element(scratch_.begin(), scratch_.begin() + mid);
    return 0.5 * (lo + scratch_[mid]);
  }

  std::shared_ptr<const RowHashSet> hashes_;
  std::optional<CounterMatrix> counters_;  // nullopt while sparse
  std::vector<SparseEntry> sparse_;
  mutable std::vector<double> scratch_;
};

inline CountSketch CountSketchFactory::Create() const {
  return CountSketch(hashes_);
}

inline void CountSketchFactory::EncodeSketch(io::Encoder& enc,
                                             const CountSketch& sketch) const {
  sketch.EncodeTo(enc);
}

inline Result<CountSketch> CountSketchFactory::DecodeSketch(
    io::Decoder& dec) const {
  CountSketch sketch = Create();
  CASTREAM_RETURN_NOT_OK(sketch.DecodeFrom(dec));
  return sketch;
}

}  // namespace castream

#endif  // CASTREAM_SKETCH_COUNT_SKETCH_H_
