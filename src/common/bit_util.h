// Bit-manipulation helpers used throughout the sketching code.
#ifndef CASTREAM_COMMON_BIT_UTIL_H_
#define CASTREAM_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

// Software prefetch for the columnar ingest path. Semantically inert (a
// prefetch of any address, valid or stale, only warms the cache), so using it
// can never change results — only hide the memory latency of the
// bucket-sketch counter cells the update loop is about to touch.
#if defined(__GNUC__) || defined(__clang__)
#define CASTREAM_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#define CASTREAM_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1, 3)
#else
#define CASTREAM_PREFETCH(addr) ((void)(addr))
#define CASTREAM_PREFETCH_WRITE(addr) ((void)(addr))
#endif

namespace castream {

/// \brief floor(log2(v)) for v >= 1; returns 0 for v == 0.
inline constexpr int FloorLog2(uint64_t v) {
  return v == 0 ? 0 : 63 - std::countl_zero(v);
}

/// \brief ceil(log2(v)) for v >= 1; returns 0 for v <= 1.
inline constexpr int CeilLog2(uint64_t v) {
  if (v <= 1) return 0;
  return 64 - std::countl_zero(v - 1);
}

/// \brief Smallest power of two >= v (v <= 2^63).
inline constexpr uint64_t NextPow2(uint64_t v) {
  return v <= 1 ? 1 : uint64_t{1} << CeilLog2(v);
}

inline constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// \brief Number of leading zeros of a 64-bit value (64 for zero). Used by
/// hash-level assignment in distinct samplers: an element lands at level l
/// with probability 2^-l.
inline constexpr int LeadingZeros(uint64_t v) { return std::countl_zero(v); }

/// \brief Number of trailing zeros (64 for zero).
inline constexpr int TrailingZeros(uint64_t v) { return std::countr_zero(v); }

/// \brief Geometric "sampling level" of a hash value: the number of leading
/// zero bits, so Pr[Level(h) >= l] = 2^-l for uniform h.
inline constexpr int HashLevel(uint64_t h) { return std::countl_zero(h); }

}  // namespace castream

#endif  // CASTREAM_COMMON_BIT_UTIL_H_
