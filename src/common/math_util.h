// Small numeric helpers shared across sketches and the correlated framework.
#ifndef CASTREAM_COMMON_MATH_UTIL_H_
#define CASTREAM_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace castream {

/// \brief Median of a scratch vector (modifies its argument). For even sizes
/// returns the mean of the two central order statistics.
inline double MedianInPlace(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

/// \brief x^k for small integral k by repeated squaring (exact for doubles
/// within range; avoids std::pow's libm dispatch on hot paths).
inline double PowInt(double x, int k) {
  double result = 1.0;
  double base = x;
  for (int e = k; e > 0; e >>= 1) {
    if (e & 1) result *= base;
    base *= base;
  }
  return result;
}

/// \brief True if `estimate` is within relative error eps of `truth`.
/// A zero truth requires a zero estimate.
inline bool WithinRelativeError(double estimate, double truth, double eps) {
  if (truth == 0.0) return estimate == 0.0;
  return std::abs(estimate - truth) <= eps * std::abs(truth);
}

/// \brief ceil(a/b) for positive integers.
inline constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace castream

#endif  // CASTREAM_COMMON_MATH_UTIL_H_
