// Deterministic, fast pseudo-random number generation for reproducible
// experiments. All stochastic components of CAStream are seeded explicitly;
// no global RNG state.
#ifndef CASTREAM_COMMON_RANDOM_H_
#define CASTREAM_COMMON_RANDOM_H_

#include <cstdint>

namespace castream {

/// \brief SplitMix64: tiny, statistically solid generator used to expand a
/// single user seed into the many seeds a multi-structure summary needs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// \brief Next 64 uniform bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256**: the workhorse generator for workload synthesis.
///
/// Chosen over std::mt19937_64 for speed (the generators feed multi-million
/// tuple streams in the benches) and for a compact, copyable state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound) via Lemire's multiply-shift
  /// (slightly biased for astronomically large bounds; fine for workloads).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace castream

#endif  // CASTREAM_COMMON_RANDOM_H_
