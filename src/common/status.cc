#include "src/common/status.h"

namespace castream {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kQueryOutOfRange:
      return "QueryOutOfRange";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kPreconditionFailed:
      return "PreconditionFailed";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace castream
