// Result<T>: value-or-Status, the return type of query APIs that can fail.
#ifndef CASTREAM_COMMON_RESULT_H_
#define CASTREAM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace castream {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result / rocksdb's StatusOr pattern: construction from a
/// T is implicit (the success path should read naturally), construction from
/// a non-OK Status is implicit on the error path, and accessing the value of
/// an errored Result is a programming error caught by assert in debug builds.
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// \brief Success case. Intentionally implicit: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// \brief Error case. Intentionally implicit:
  /// `return Status::InvalidArgument(...);`. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  /// \brief The error status; Status::OK() if a value is present.
  const Status& status() const { return status_; }

  /// \brief The contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// \brief Value if present, otherwise the supplied fallback.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value.
};

/// \brief Propagates the error of a Result expression, or assigns its value.
#define CASTREAM_ASSIGN_OR_RETURN(lhs, expr)     \
  auto CASTREAM_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!CASTREAM_CONCAT_(_res_, __LINE__).ok())                \
    return CASTREAM_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(CASTREAM_CONCAT_(_res_, __LINE__)).value()

#define CASTREAM_CONCAT_(a, b) CASTREAM_CONCAT_IMPL_(a, b)
#define CASTREAM_CONCAT_IMPL_(a, b) a##b

}  // namespace castream

#endif  // CASTREAM_COMMON_RESULT_H_
