// Status: lightweight error propagation without exceptions, following the
// RocksDB / Arrow idiom for database-systems code. All fallible public APIs
// in CAStream return Status or Result<T> (see result.h).
#ifndef CASTREAM_COMMON_STATUS_H_
#define CASTREAM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace castream {

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries an error code plus a
/// human-readable message. Statuses are cheap to move; an OK status performs
/// no allocation.
///
/// The class itself is [[nodiscard]]: every function returning a Status by
/// value — MergeFrom, Serialize, Deserialize helpers, the io decoders — is
/// nodiscard without per-declaration annotations, so silently dropped
/// errors fail the -Werror build of src/.
class [[nodiscard]] Status {
 public:
  /// Error taxonomy. Kept deliberately small; codes mirror the situations
  /// that arise in streaming-summary APIs.
  enum class Code : unsigned char {
    kOk = 0,
    /// The query cannot be answered from the summary (e.g. Algorithm 3
    /// outputs FAIL because every level has discarded data below the cutoff).
    kQueryOutOfRange = 1,
    /// Caller supplied an argument outside the documented domain.
    kInvalidArgument = 2,
    /// The summary's precondition was violated (e.g. merging sketches built
    /// from different hash seeds).
    kPreconditionFailed = 3,
    /// An internal invariant failed; indicates a bug in the library.
    kInternal = 4,
    /// Functionality intentionally not provided in this configuration.
    kNotSupported = 5,
    /// A transient failure of an external resource (socket reset, peer
    /// gone, connect refused). Retrying after a backoff may succeed —
    /// the net/service layers key reconnect loops on exactly this code,
    /// so it must never be used for deterministic failures.
    kUnavailable = 6,
  };

  Status() noexcept : code_(Code::kOk) {}

  /// \brief Constructs an OK status. Identical to the default constructor;
  /// provided for call-site readability.
  static Status OK() { return Status(); }

  static Status QueryOutOfRange(std::string_view msg) {
    return Status(Code::kQueryOutOfRange, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status PreconditionFailed(std::string_view msg) {
    return Status(Code::kPreconditionFailed, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }

  /// \brief Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<code name>: <message>" for logging.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// \brief Returns early with the error if the expression is not OK.
#define CASTREAM_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::castream::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace castream

#endif  // CASTREAM_COMMON_STATUS_H_
