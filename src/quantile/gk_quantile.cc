#include "src/quantile/gk_quantile.h"

#include <algorithm>
#include <cmath>

namespace castream {

GkQuantileSummary::GkQuantileSummary(double eps)
    : eps_(eps <= 0.0 || eps >= 1.0 ? 0.01 : eps) {}

void GkQuantileSummary::Insert(uint64_t value) {
  // Find insertion position (tuples_ sorted by v).
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, uint64_t v) { return t.v < v; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    // New minimum or maximum: rank is known exactly.
    delta = 0;
  } else {
    delta = static_cast<uint64_t>(
        std::max(0.0, std::floor(2.0 * eps_ * static_cast<double>(count_)) - 1.0));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;

  if (++since_compress_ >= static_cast<uint64_t>(1.0 / (2.0 * eps_)) + 1) {
    Compress();
    since_compress_ = 0;
  }
}

void GkQuantileSummary::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * eps_ * static_cast<double>(count_);
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());
  // Merge tuple i into its successor when their combined uncertainty stays
  // within the 2*eps*n band; the last tuple (maximum) is always kept.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (static_cast<double>(cur.g + next.g + next.delta) <= threshold) {
      // Merge: fold cur's g into next (done by mutating a copy on the input
      // side so subsequent merges see the accumulated g).
      tuples_[i + 1].g += cur.g;
    } else {
      out.push_back(cur);
    }
  }
  out.push_back(tuples_.back());
  tuples_ = std::move(out);
}

Result<uint64_t> GkQuantileSummary::Query(double phi) const {
  if (tuples_.empty()) {
    return Status::QueryOutOfRange("GkQuantileSummary::Query on empty summary");
  }
  if (phi < 0.0 || phi > 1.0) {
    return Status::InvalidArgument("quantile phi must be in [0, 1]");
  }
  // Standard GK lookup: return the last tuple v_i such that the next
  // tuple's maximum possible rank still fits under r + eps*n; with the
  // summary invariant g_i + delta_i <= 2*eps*n this guarantees the true
  // rank of the answer is within eps*n of r.
  const double r = phi * static_cast<double>(count_);
  const double bound = r + eps_ * static_cast<double>(count_);
  uint64_t rank_min = 0;
  for (size_t i = 0; i + 1 < tuples_.size(); ++i) {
    rank_min += tuples_[i].g;
    const double next_rank_max = static_cast<double>(
        rank_min + tuples_[i + 1].g + tuples_[i + 1].delta);
    if (next_rank_max > bound) return tuples_[i].v;
  }
  return tuples_.back().v;
}

double GkQuantileSummary::EstimateRank(uint64_t value) const {
  uint64_t rank_min = 0;
  uint64_t prev = 0;
  for (const Tuple& t : tuples_) {
    if (t.v > value) break;
    rank_min += t.g;
    prev = rank_min;
  }
  return static_cast<double>(prev);
}

}  // namespace castream
