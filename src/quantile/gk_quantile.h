// Greenwald-Khanna quantile summary [21].
//
// Role in this repository: the paper's drill-down workflow (Section 1)
// pairs a correlated-aggregate summary with a whole-stream quantile summary
// over the y dimension, so the analyst can first ask "what is the median
// flow size?" and then use the answer as the cutoff c of a correlated
// query. This is that quantile summary.
#ifndef CASTREAM_QUANTILE_GK_QUANTILE_H_
#define CASTREAM_QUANTILE_GK_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace castream {

/// \brief Deterministic eps-approximate quantile summary: Query(phi)
/// returns a value whose rank is within eps*n of phi*n.
class GkQuantileSummary {
 public:
  /// \brief eps in (0, 1); space is O((1/eps) * log(eps * n)).
  explicit GkQuantileSummary(double eps);

  /// \brief Observes one value. Amortized O(log(1/eps) + log log n).
  void Insert(uint64_t value);

  /// \brief Value whose rank is within eps*n of ceil(phi*n), phi in [0, 1].
  /// Fails on an empty summary or phi outside [0, 1].
  Result<uint64_t> Query(double phi) const;

  /// \brief Rank estimate for `value` (count of items <= value), with
  /// additive error eps*n.
  double EstimateRank(uint64_t value) const;

  uint64_t count() const { return count_; }
  size_t TupleCount() const { return tuples_.size(); }
  size_t SizeBytes() const { return tuples_.size() * sizeof(Tuple); }

 private:
  // One GK tuple: value v, g = rank(v) - rank(previous v), delta = maximum
  // over-count of v's rank.
  struct Tuple {
    uint64_t v;
    uint64_t g;
    uint64_t delta;
  };

  void Compress();

  double eps_;
  uint64_t count_ = 0;
  uint64_t since_compress_ = 0;
  std::vector<Tuple> tuples_;  // sorted by v
};

}  // namespace castream

#endif  // CASTREAM_QUANTILE_GK_QUANTILE_H_
