#include "src/io/format.h"

namespace castream {

std::string_view SummaryKindName(SummaryKind kind) {
  switch (kind) {
    case SummaryKind::kCorrelatedF2:
      return "f2";
    case SummaryKind::kCorrelatedF0:
      return "f0";
    case SummaryKind::kCorrelatedRarity:
      return "rarity";
    case SummaryKind::kCorrelatedF2HeavyHitters:
      return "hh";
    case SummaryKind::kCorrelatedNestedMisraGries:
      return "chh_mg";
    case SummaryKind::kCorrelatedFastChh:
      return "chh_fast";
  }
  return "unknown";
}

Result<SummaryKind> SummaryKindFromName(std::string_view name) {
  if (name == "f2") return SummaryKind::kCorrelatedF2;
  if (name == "f0") return SummaryKind::kCorrelatedF0;
  if (name == "rarity") return SummaryKind::kCorrelatedRarity;
  if (name == "hh") return SummaryKind::kCorrelatedF2HeavyHitters;
  if (name == "chh_mg") return SummaryKind::kCorrelatedNestedMisraGries;
  if (name == "chh_fast") return SummaryKind::kCorrelatedFastChh;
  return Status::InvalidArgument(
      "unknown summary kind name (expected f2, f0, rarity, hh, chh_mg, or "
      "chh_fast): " +
      std::string(name));
}

namespace io {

Result<SummaryKind> PeekKind(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  uint32_t magic = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument(
        "deserialize: bad magic (not a CAStream summary blob)");
  }
  uint32_t kind = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU32(&kind));
  switch (static_cast<SummaryKind>(kind)) {
    case SummaryKind::kCorrelatedF2:
    case SummaryKind::kCorrelatedF0:
    case SummaryKind::kCorrelatedRarity:
    case SummaryKind::kCorrelatedF2HeavyHitters:
    case SummaryKind::kCorrelatedNestedMisraGries:
    case SummaryKind::kCorrelatedFastChh:
      return static_cast<SummaryKind>(kind);
  }
  return Status::InvalidArgument(
      "deserialize: unregistered summary kind tag " + std::to_string(kind));
}

Status ReadEnvelope(Decoder& dec, SummaryKind expected_kind,
                    uint32_t expected_version) {
  uint32_t magic = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU32(&magic));
  if (magic != kMagic) {
    return Status::InvalidArgument(
        "deserialize: bad magic (not a CAStream summary blob)");
  }
  uint32_t kind = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU32(&kind));
  if (kind != static_cast<uint32_t>(expected_kind)) {
    return Status::PreconditionFailed(
        "deserialize: blob holds a '" +
        std::string(SummaryKindName(static_cast<SummaryKind>(kind))) +
        "' summary, not the requested '" +
        std::string(SummaryKindName(expected_kind)) + "'");
  }
  uint32_t version = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU32(&version));
  if (version != expected_version) {
    return Status::InvalidArgument(
        "deserialize: unsupported format version " + std::to_string(version) +
        " for kind '" + std::string(SummaryKindName(expected_kind)) +
        "' (this build reads version " + std::to_string(expected_version) +
        ")");
  }
  uint64_t length = 0;
  CASTREAM_RETURN_NOT_OK(dec.ReadU64(&length));
  if (length != dec.remaining()) {
    return Status::InvalidArgument(
        "deserialize: envelope length does not match the payload "
        "(truncated blob or trailing garbage)");
  }
  return Status::OK();
}

}  // namespace io
}  // namespace castream
