// Binary wire-format writer for durable summaries (the Unified Summary API).
//
// Every multi-byte integer is written little-endian byte by byte, so blobs
// are identical across compilers and architectures (the CI cross-reads
// gcc-written blobs in the clang build). Doubles never appear on the wire:
// every format in src/ serializes integer state and recomputes derived
// floating-point values on decode, which is what makes
// Deserialize(Serialize(s)) answer queries bit-for-bit like s.
#ifndef CASTREAM_IO_ENCODER_H_
#define CASTREAM_IO_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace castream::io {

/// \brief Appends little-endian fixed-width values to a caller-owned string.
///
/// Encoding cannot fail (short of std::bad_alloc), so the writer API returns
/// void; all error handling lives on the Decoder side.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// \brief Two's-complement little-endian, matching Decoder::ReadI64.
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  /// \brief Signed 32-bit value (node indices, -1 sentinels).
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }

  void PutBytes(std::span<const std::byte> bytes) {
    out_->append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }

  /// \brief Current size of the output; offsets from here feed PatchU64.
  size_t size() const { return out_->size(); }

  /// \brief Overwrites 8 bytes at `offset` with v (little-endian). Used to
  /// back-patch the envelope's body-length field once the body is encoded.
  void PatchU64(size_t offset, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      (*out_)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }

 private:
  std::string* out_;
};

}  // namespace castream::io

#endif  // CASTREAM_IO_ENCODER_H_
