// Checked binary reader for the summary wire format (see encoder.h).
//
// Every read validates remaining length and returns Status instead of
// crashing: a truncated, bit-flipped, or adversarial blob must surface
// InvalidArgument from Deserialize, never UB or an allocation explosion.
// Count fields are therefore read through ReadCount, which caps the declared
// element count by the bytes actually remaining — a 4-byte count can claim
// 2^32 entries, but it cannot make the decoder reserve more memory than the
// blob could possibly back.
#ifndef CASTREAM_IO_DECODER_H_
#define CASTREAM_IO_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "src/common/status.h"

namespace castream::io {

/// \brief Sequential little-endian reader over a borrowed byte span.
class Decoder {
 public:
  explicit Decoder(std::span<const std::byte> bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }
  bool Done() const { return pos_ == bytes_.size(); }

  [[nodiscard]] Status ReadU8(uint8_t* v) {
    if (remaining() < 1) return Truncated("u8");
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return Status::OK();
  }

  [[nodiscard]] Status ReadU32(uint32_t* v) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return Status::OK();
  }

  [[nodiscard]] Status ReadU64(uint64_t* v) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return Status::OK();
  }

  [[nodiscard]] Status ReadI64(int64_t* v) {
    uint64_t u = 0;
    CASTREAM_RETURN_NOT_OK(ReadU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  [[nodiscard]] Status ReadI32(int32_t* v) {
    uint32_t u = 0;
    CASTREAM_RETURN_NOT_OK(ReadU32(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }

  /// \brief Reads a u32 element count and caps it by the bytes remaining:
  /// each element will consume at least `min_bytes_each` (>= 1), so a count
  /// exceeding remaining()/min_bytes_each proves the blob corrupt before any
  /// allocation sized by it happens.
  ///
  /// `min_bytes_each == 0` is treated as 1, never as "no cap": the whole
  /// point of this method is that a 4-byte count field cannot drive an
  /// allocation larger than the payload could possibly back, and a zero
  /// divisor would disable exactly that guarantee. Callers should still
  /// pass their true per-element floor — a tighter floor rejects corrupt
  /// blobs earlier — but a careless 0 degrades to the weakest cap, not to
  /// an unchecked count.
  [[nodiscard]] Status ReadCount(uint32_t* count, size_t min_bytes_each) {
    uint32_t n = 0;
    CASTREAM_RETURN_NOT_OK(ReadU32(&n));
    if (min_bytes_each == 0) min_bytes_each = 1;
    if (n > remaining() / min_bytes_each) {
      return Status::InvalidArgument(
          "decode: declared element count exceeds the bytes remaining in "
          "the payload (truncated or corrupt blob)");
    }
    *count = n;
    return Status::OK();
  }

  /// \brief Borrows the next n bytes without copying.
  [[nodiscard]] Status ReadBytes(size_t n, std::span<const std::byte>* out) {
    if (remaining() < n) return Truncated("bytes");
    *out = bytes_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::InvalidArgument(
        std::string("decode: payload truncated while reading ") + what);
  }

  std::span<const std::byte> bytes_;
  size_t pos_ = 0;
};

/// \brief Convenience view of a serialized string as the byte span
/// Deserialize expects.
inline std::span<const std::byte> BytesOf(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

}  // namespace castream::io

#endif  // CASTREAM_IO_DECODER_H_
