// The versioned envelope of the summary wire format, and the concept a
// sketch family must model for the generic framework to be serializable.
//
// Blob layout (all integers little-endian, see encoder.h):
//
//   u32 magic      'C' 'A' 'S' 'T'
//   u32 kind       SummaryKind of the payload
//   u32 version    per-kind format version (bump on any layout change)
//   u64 length     body bytes following this header
//   ...body...     type-specific (see the Serialize methods in src/core)
//
// The length prefix frames a blob inside a larger buffer; Deserialize on a
// whole-blob span additionally requires the frame to consume the span
// exactly, so trailing garbage is an error rather than silently ignored.
// Wrong magic / version / truncation yield InvalidArgument; a well-formed
// blob of a different kind yields PreconditionFailed (same taxonomy as the
// hash-family checks in MergeFrom).
#ifndef CASTREAM_IO_FORMAT_H_
#define CASTREAM_IO_FORMAT_H_

#include <cstdint>
#include <string_view>
#include <type_traits>
#include <utility>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/io/decoder.h"
#include "src/io/encoder.h"

namespace castream {

/// \brief The registered durable summary types (wire-format tags; values are
/// part of the format and must never be reused).
enum class SummaryKind : uint32_t {
  kCorrelatedF2 = 1,
  kCorrelatedF0 = 2,
  kCorrelatedRarity = 3,
  kCorrelatedF2HeavyHitters = 4,
  kCorrelatedNestedMisraGries = 5,
  kCorrelatedFastChh = 6,
};

// Pinned wire-tag table. Every committed blob (tests/golden/*.bin, files
// written by castream_shardctl, frames published by the service) embeds
// these numbers, so they may only ever be *extended* — renumbering an
// existing tag would make old blobs decode as a different kind or fail.
// Adding a kind means adding one assert line here; editing an existing line
// means you are breaking the format and need a migration story.
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedF2) == 1);
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedF0) == 2);
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedRarity) == 3);
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedF2HeavyHitters) ==
              4);
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedNestedMisraGries) ==
              5);
static_assert(static_cast<uint32_t>(SummaryKind::kCorrelatedFastChh) == 6);

/// \brief Human-readable name ("f2", "f0", "rarity", "hh", "chh_mg",
/// "chh_fast") or "unknown".
std::string_view SummaryKindName(SummaryKind kind);

/// \brief Parses a kind name as printed by SummaryKindName.
Result<SummaryKind> SummaryKindFromName(std::string_view name);

namespace io {

inline constexpr uint32_t kMagic = 0x54534143u;  // "CAST" little-endian

/// \brief Current format version per kind. Bump the one you change (and add
/// a golden fixture for the old version if backward reading is kept).
inline constexpr uint32_t kCorrelatedF2Version = 1;
inline constexpr uint32_t kCorrelatedF0Version = 1;
inline constexpr uint32_t kCorrelatedRarityVersion = 1;
inline constexpr uint32_t kCorrelatedF2HeavyHittersVersion = 1;
inline constexpr uint32_t kCorrelatedNestedMisraGriesVersion = 1;
inline constexpr uint32_t kCorrelatedFastChhVersion = 1;

/// \brief Writes the envelope with a zero length placeholder; returns the
/// offset to patch via EndEnvelope once the body is encoded.
inline size_t BeginEnvelope(Encoder& enc, SummaryKind kind,
                            uint32_t version) {
  enc.PutU32(kMagic);
  enc.PutU32(static_cast<uint32_t>(kind));
  enc.PutU32(version);
  const size_t patch = enc.size();
  enc.PutU64(0);
  return patch;
}

inline void EndEnvelope(Encoder& enc, size_t patch_offset) {
  enc.PatchU64(patch_offset, enc.size() - (patch_offset + 8));
}

/// \brief Reads the kind field of a blob without consuming it, so a
/// type-erased reader (AnySummary::Deserialize) can dispatch.
[[nodiscard]] Result<SummaryKind> PeekKind(std::span<const std::byte> bytes);

/// \brief Consumes and validates a whole-blob envelope: magic, expected
/// kind, expected version, and a length field that matches the remaining
/// span exactly (one blob per span; no trailing garbage).
[[nodiscard]] Status ReadEnvelope(Decoder& dec, SummaryKind expected_kind,
                                  uint32_t expected_version);

/// \brief What a sketch factory must provide for summaries built on it to
/// be durable: the family itself (hash seeds and dimensions — the value
/// identity MergeFrom checks) and its sketches must encode and decode.
/// Modeled by AmsF2SketchFactory and F2HeavyHitterBundleFactory; factories
/// without wire support (ExactAggregateFactory, FkSketchFactory) simply
/// leave CorrelatedSketch's Serialize/Deserialize uninstantiated.
template <typename F>
concept SerializableSketchFamily = requires(
    const F& f, Encoder& enc, Decoder& dec,
    const std::decay_t<decltype(std::declval<const F&>().Create())>& sketch) {
  f.EncodeFamily(enc);
  { F::DecodeFamily(dec) } -> std::same_as<Result<F>>;
  f.EncodeSketch(enc, sketch);
  {
    f.DecodeSketch(dec)
  } -> std::same_as<
      Result<std::decay_t<decltype(std::declval<const F&>().Create())>>>;
};

/// \brief Factories whose CorrelatedSketch instantiation is a registered
/// top-level summary (gives the generic Serialize/Deserialize its envelope
/// kind and version).
template <typename F>
concept RegisteredSummaryFactory = SerializableSketchFamily<F> && requires {
  { F::kSummaryKind } -> std::convertible_to<SummaryKind>;
  { F::kFormatVersion } -> std::convertible_to<uint32_t>;
};

}  // namespace io
}  // namespace castream

#endif  // CASTREAM_IO_FORMAT_H_
