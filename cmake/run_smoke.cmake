# Runs an example binary and checks BOTH the exit code and the output, since
# CTest's PASS_REGULAR_EXPRESSION would otherwise override the return-code
# check. Usage: cmake -DSMOKE_CMD=<binary> -P run_smoke.cmake
execute_process(COMMAND ${SMOKE_CMD} OUTPUT_VARIABLE smoke_out RESULT_VARIABLE smoke_rc)
if(NOT smoke_rc EQUAL 0)
  message(FATAL_ERROR "${SMOKE_CMD} exited with ${smoke_rc}")
endif()
if(NOT smoke_out MATCHES "estimate" OR NOT smoke_out MATCHES "rel\\.err")
  message(FATAL_ERROR "${SMOKE_CMD} output missing the estimate table:\n${smoke_out}")
endif()
